// Package cfg builds per-function control-flow graphs from go/ast, the
// flow-aware substrate the contract analyzers run on (via the solvers in
// internal/dataflow). Like the rest of gfdlint it is stdlib-only; the
// shapes are modelled on golang.org/x/tools/go/cfg so a future port is a
// rename, but the construction here additionally records defer sites,
// panic/termination edges, and — what the loop-sensitive analyzers need
// most — which edges are loop back-edges and which blocks belong to each
// loop's natural body.
//
// A Block is a maximal straight-line run of AST nodes (statements plus the
// controlling expressions of if/for/switch, evaluated in order). Control
// constructs fan out to successor blocks; return statements, panic calls
// and Fatal-style terminators edge to the function's single Exit block.
// Function literals are opaque: a FuncLit is a value inside some node, its
// body belongs to its own CFG (build one with New on the literal's body).
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block // returns, panics, and the fall-off-the-end edge all land here
	Blocks []*Block
	Defers []*ast.DeferStmt // in registration order
	Loops  []*Loop          // every for/range loop, outermost first per nesting chain
}

// Block is one straight-line run of nodes.
type Block struct {
	Index int
	Kind  string     // "entry", "exit", "for.head", "if.then", ... (debugging)
	Nodes []ast.Node // statements and controlling expressions, in evaluation order
	Succs []*Block
	Preds []*Block
}

// Loop is one for or range statement: Head is the block every iteration
// passes through (the cond block, or the empty head of a `for {}`), and
// Latches are the sources of its back edges (body fall-through, post
// block, continue statements). A loop whose body always diverges has no
// latches and therefore no back edge.
type Loop struct {
	Stmt    ast.Stmt // *ast.ForStmt or *ast.RangeStmt
	Head    *Block
	Latches []*Block
}

// Body returns the loop's natural body: Head plus every block that can
// reach a latch without passing through Head (computed backwards from the
// latches, the standard natural-loop construction).
func (l *Loop) Body() map[*Block]bool {
	body := map[*Block]bool{l.Head: true}
	var stack []*Block
	for _, t := range l.Latches {
		if !body[t] {
			body[t] = true
			stack = append(stack, t)
		}
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range b.Preds {
			if !body[p] {
				body[p] = true
				stack = append(stack, p)
			}
		}
	}
	return body
}

// New builds the CFG of one function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	b.live = true
	b.labels = map[string]*labelInfo{}
	b.stmtList(body.List)
	if b.live {
		b.edge(b.cur, b.g.Exit)
	}
	return b.g
}

// String renders the graph for debugging and the hand-built solver tests.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "%d(%s) ->", blk.Index, blk.Kind)
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " %d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

type labelInfo struct {
	name    string
	block   *Block // the label's entry point (goto target)
	breakTo *Block // set while the labeled loop/switch/select is open
	contTo  *Block
	loop    *Loop
}

// loopFrame tracks the innermost enclosing loop's branch targets.
type loopFrame struct {
	breakTo *Block
	contTo  *Block
	loop    *Loop // nil for switch/select frames (break-only)
}

type builder struct {
	g      *Graph
	cur    *Block
	live   bool // false after return/panic/branch: subsequent stmts are unreachable
	frames []loopFrame
	labels map[string]*labelInfo

	// pendingLabel is consumed by the next loop/switch/select statement so
	// `break L` / `continue L` resolve through it.
	pendingLabel *labelInfo
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump moves construction to a fresh (so far unreachable) block after a
// diverging statement; later labels or joins may still edge into it.
func (b *builder) startDead(kind string) {
	b.cur = b.newBlock(kind)
	b.live = false
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.EmptyStmt:
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		if b.live {
			b.edge(b.cur, b.g.Exit)
		}
		b.startDead("return.after")
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body, s)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Body, s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.add(s)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && IsTerminalCall(call) {
			if b.live {
				b.edge(b.cur, b.g.Exit)
			}
			b.startDead("panic.after")
		}
	default:
		// Assignments, declarations, sends, go statements, inc/dec: plain
		// straight-line nodes.
		b.add(s)
	}
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	name := s.Label.Name
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{name: name}
		b.labels[name] = li
	}
	if li.block == nil {
		li.block = b.newBlock("label." + name)
	}
	if b.live {
		b.edge(b.cur, li.block)
	}
	b.cur = li.block
	b.live = true
	switch s.Stmt.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.pendingLabel = li
	}
	b.stmt(s.Stmt)
	b.pendingLabel = nil
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok {
	case token.BREAK:
		var to *Block
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil {
				to = li.breakTo
			}
		} else {
			for i := len(b.frames) - 1; i >= 0; i-- {
				to = b.frames[i].breakTo
				break
			}
		}
		if to != nil && b.live {
			b.edge(b.cur, to)
		}
		b.startDead("break.after")
	case token.CONTINUE:
		var fr *loopFrame
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.loop != nil {
				fr = &loopFrame{breakTo: li.breakTo, contTo: li.contTo, loop: li.loop}
			}
		} else {
			for i := len(b.frames) - 1; i >= 0; i-- {
				if b.frames[i].loop != nil {
					fr = &b.frames[i]
					break
				}
			}
		}
		if fr != nil && b.live {
			b.edge(b.cur, fr.contTo)
			fr.loop.noteLatch(b.cur, fr.contTo)
		}
		b.startDead("continue.after")
	case token.GOTO:
		if s.Label != nil {
			li := b.labels[s.Label.Name]
			if li == nil {
				li = &labelInfo{name: s.Label.Name}
				b.labels[s.Label.Name] = li
			}
			if li.block == nil {
				li.block = b.newBlock("label." + s.Label.Name)
			}
			if b.live {
				b.edge(b.cur, li.block)
			}
		}
		b.startDead("goto.after")
	case token.FALLTHROUGH:
		// The switch construction wires the edge to the next clause.
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	condBlk, condLive := b.cur, b.live
	after := b.newBlock("if.after")

	then := b.newBlock("if.then")
	if condLive {
		b.edge(condBlk, then)
	}
	b.cur, b.live = then, condLive
	b.stmtList(s.Body.List)
	if b.live {
		b.edge(b.cur, after)
	}

	switch e := s.Else.(type) {
	case nil:
		if condLive {
			b.edge(condBlk, after)
		}
	case *ast.BlockStmt:
		els := b.newBlock("if.else")
		if condLive {
			b.edge(condBlk, els)
		}
		b.cur, b.live = els, condLive
		b.stmtList(e.List)
		if b.live {
			b.edge(b.cur, after)
		}
	case *ast.IfStmt:
		els := b.newBlock("if.else")
		if condLive {
			b.edge(condBlk, els)
		}
		b.cur, b.live = els, condLive
		b.stmt(e)
		if b.live {
			b.edge(b.cur, after)
		}
	}
	b.cur = after
	b.live = len(after.Preds) > 0
}

func (l *Loop) noteLatch(src, target *Block) {
	// Only edges landing on the loop head are back edges; a continue in a
	// loop with a post statement jumps to the post block instead, and the
	// post block registers the real latch when it wires post→head.
	if target != l.Head {
		return
	}
	for _, t := range l.Latches {
		if t == src {
			return
		}
	}
	l.Latches = append(l.Latches, src)
}

func (b *builder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	if b.live {
		b.edge(b.cur, head)
	}
	entryLive := b.live
	b.cur, b.live = head, entryLive
	if s.Cond != nil {
		b.add(s.Cond)
	}
	body := b.newBlock("for.body")
	after := b.newBlock("for.after")
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, after)
	}

	loop := &Loop{Stmt: s, Head: head}
	b.g.Loops = append(b.g.Loops, loop)

	contTo := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		contTo = post
	}
	if li := b.pendingLabel; li != nil {
		li.breakTo, li.contTo, li.loop = after, contTo, loop
		b.pendingLabel = nil
		defer func() { li.breakTo, li.contTo, li.loop = nil, nil, nil }()
	}
	b.frames = append(b.frames, loopFrame{breakTo: after, contTo: contTo, loop: loop})
	b.cur, b.live = body, true
	b.stmtList(s.Body.List)
	if b.live {
		b.edge(b.cur, contTo)
		if post == nil {
			loop.noteLatch(b.cur, head)
		}
	}
	if post != nil {
		b.cur, b.live = post, len(post.Preds) > 0
		b.add(s.Post)
		if b.live {
			b.edge(post, head)
			loop.noteLatch(post, head)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
	b.live = len(after.Preds) > 0
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	head := b.newBlock("range.head")
	if b.live {
		b.edge(b.cur, head)
	}
	b.cur = head
	b.add(s) // the range head: evaluate X, draw the next element
	body := b.newBlock("range.body")
	after := b.newBlock("range.after")
	b.edge(head, body)
	b.edge(head, after)

	loop := &Loop{Stmt: s, Head: head}
	b.g.Loops = append(b.g.Loops, loop)
	if li := b.pendingLabel; li != nil {
		li.breakTo, li.contTo, li.loop = after, head, loop
		b.pendingLabel = nil
		defer func() { li.breakTo, li.contTo, li.loop = nil, nil, nil }()
	}
	b.frames = append(b.frames, loopFrame{breakTo: after, contTo: head, loop: loop})
	b.cur, b.live = body, true
	b.stmtList(s.Body.List)
	if b.live {
		b.edge(b.cur, head)
		loop.noteLatch(b.cur, head)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
	b.live = true
}

func (b *builder) switchStmt(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, s ast.Stmt) {
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if ts, ok := s.(*ast.TypeSwitchStmt); ok {
		b.add(ts.Assign)
	}
	head, headLive := b.cur, b.live
	after := b.newBlock("switch.after")
	if li := b.pendingLabel; li != nil {
		li.breakTo = after
		b.pendingLabel = nil
		defer func() { li.breakTo = nil }()
	}
	b.frames = append(b.frames, loopFrame{breakTo: after})

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock("case")
		if headLive {
			b.edge(head, blocks[i])
		}
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault && headLive {
		b.edge(head, after)
	}
	for i, cc := range clauses {
		b.cur, b.live = blocks[i], headLive
		for _, e := range cc.List {
			b.add(e)
		}
		b.stmtList(cc.Body)
		if b.live {
			// An explicit fallthrough must be the clause's final statement.
			if n := len(cc.Body); n > 0 {
				if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(blocks) {
					b.edge(b.cur, blocks[i+1])
					continue
				}
			}
			b.edge(b.cur, after)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
	b.live = len(after.Preds) > 0
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	b.add(s)
	head, headLive := b.cur, b.live
	after := b.newBlock("select.after")
	if li := b.pendingLabel; li != nil {
		li.breakTo = after
		b.pendingLabel = nil
		defer func() { li.breakTo = nil }()
	}
	b.frames = append(b.frames, loopFrame{breakTo: after})
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("select.case")
		if headLive {
			b.edge(head, blk)
		}
		b.cur, b.live = blk, headLive
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		if b.live {
			b.edge(b.cur, after)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
	b.live = len(after.Preds) > 0
}

// IsTerminalCall reports whether a call never returns: panic, os.Exit,
// runtime.Goexit, and testing/log Fatal-family helpers. The heuristic is
// name-shaped (shared with the lockdiscipline terminator rule) because the
// loader does not always have bodies for cross-package callees.
func IsTerminalCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic" || strings.Contains(fun.Name, "Fatal") || strings.HasPrefix(fun.Name, "fatal")
	case *ast.SelectorExpr:
		n := fun.Sel.Name
		return strings.Contains(n, "Fatal") || n == "Exit" || n == "Goexit"
	}
	return false
}
