package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFunc parses src as a file, finds the function named name, and builds
// its CFG.
func buildFunc(t *testing.T, src, name string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return New(fd.Body)
		}
	}
	t.Fatalf("no function %q in source", name)
	return nil
}

// reachable returns the blocks reachable from g.Entry.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{g.Entry: true}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

func TestStraightLineFlowsToExit(t *testing.T) {
	g := buildFunc(t, `func f() { a := 1; b := a + 1; _ = b }`, "f")
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry holds %d nodes, want the 3 statements", len(g.Entry.Nodes))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("entry succs = %v, want the exit block", g.Entry.Succs)
	}
	if len(g.Loops) != 0 || len(g.Defers) != 0 {
		t.Fatalf("straight line reported loops %d, defers %d", len(g.Loops), len(g.Defers))
	}
}

func TestIfElseJoins(t *testing.T) {
	g := buildFunc(t, `func f(c bool) int {
		x := 0
		if c {
			x = 1
		} else {
			x = 2
		}
		return x
	}`, "f")
	// The cond block fans out to two arms, both of which rejoin before the
	// return; the return edges to Exit.
	if n := len(g.Entry.Succs); n != 2 {
		t.Fatalf("cond block has %d succs, want 2 arms", n)
	}
	a, b := g.Entry.Succs[0], g.Entry.Succs[1]
	if len(a.Succs) != 1 || len(b.Succs) != 1 || a.Succs[0] != b.Succs[0] {
		t.Fatalf("arms do not rejoin: %v vs %v", a.Succs, b.Succs)
	}
	join := a.Succs[0]
	if len(join.Succs) != 1 || join.Succs[0] != g.Exit {
		t.Fatalf("join succs = %v, want exit", join.Succs)
	}
}

func TestForLoopBackEdgeAndBody(t *testing.T) {
	g := buildFunc(t, `func f(n int) int {
		total := 0
		for i := 0; i < n; i++ {
			total += i
		}
		return total
	}`, "f")
	if len(g.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(g.Loops))
	}
	l := g.Loops[0]
	if _, ok := l.Stmt.(*ast.ForStmt); !ok {
		t.Fatalf("loop stmt is %T, want *ast.ForStmt", l.Stmt)
	}
	if len(l.Latches) != 1 {
		t.Fatalf("loop has %d latches, want 1 (the post block)", len(l.Latches))
	}
	// The latch's back edge lands on the head.
	found := false
	for _, s := range l.Latches[0].Succs {
		if s == l.Head {
			found = true
		}
	}
	if !found {
		t.Fatal("latch has no edge back to the head")
	}
	body := l.Body()
	if !body[l.Head] || !body[l.Latches[0]] {
		t.Fatal("natural body misses the head or the latch")
	}
	if body[g.Entry] || body[g.Exit] {
		t.Fatal("natural body leaked outside the loop")
	}
}

func TestUnboundedLoopContinueAndBreak(t *testing.T) {
	g := buildFunc(t, `func f(n int) int {
		for {
			n++
			if n%2 == 0 {
				continue
			}
			if n > 10 {
				break
			}
		}
		return n
	}`, "f")
	if len(g.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(g.Loops))
	}
	l := g.Loops[0]
	if len(l.Latches) != 2 {
		t.Fatalf("loop has %d latches, want 2 (continue + fall-through)", len(l.Latches))
	}
	// break must leave the loop: some block outside the natural body is
	// reachable from inside it.
	body := l.Body()
	escaped := false
	for b := range body {
		for _, s := range b.Succs {
			if !body[s] {
				escaped = true
			}
		}
	}
	if !escaped {
		t.Fatal("break did not produce an edge out of the loop body")
	}
}

func TestLabeledContinueTargetsOuterLoop(t *testing.T) {
	g := buildFunc(t, `func f(n int) int {
	outer:
		for {
			for j := 0; j < n; j++ {
				if j == 3 {
					continue outer
				}
			}
			n--
			if n == 0 {
				break
			}
		}
		return n
	}`, "f")
	if len(g.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(g.Loops))
	}
	outer := g.Loops[0] // outermost first per nesting chain
	if _, ok := outer.Stmt.(*ast.ForStmt); !ok || outer.Stmt.(*ast.ForStmt).Cond != nil {
		t.Fatalf("first loop is not the unbounded outer loop: %T", outer.Stmt)
	}
	// The labeled continue adds a latch to the outer loop from inside the
	// inner loop's body.
	if len(outer.Latches) < 2 {
		t.Fatalf("outer loop has %d latches, want the fall-through and the labeled continue", len(outer.Latches))
	}
}

func TestReturnAndDeadCode(t *testing.T) {
	g := buildFunc(t, `func f(c bool) int {
		if c {
			return 1
		}
		return 2
	}`, "f")
	if len(g.Exit.Preds) != 2 {
		t.Fatalf("exit has %d preds, want the two returns", len(g.Exit.Preds))
	}
	g = buildFunc(t, `func f() int {
		return 1
		x := 2 // unreachable
		_ = x
		return 3
	}`, "f")
	live := reachable(g)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && live[b] {
				t.Fatalf("unreachable assignment %v sits in a live block", as)
			}
		}
	}
}

func TestPanicIsTerminal(t *testing.T) {
	g := buildFunc(t, `func f(c bool) {
		if c {
			panic("boom")
		}
		println("after")
	}`, "f")
	// The panic block edges to Exit, not to the join.
	var panicBlk *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						panicBlk = b
					}
				}
			}
		}
	}
	if panicBlk == nil {
		t.Fatal("no block holds the panic call")
	}
	if len(panicBlk.Succs) != 1 || panicBlk.Succs[0] != g.Exit {
		t.Fatalf("panic block succs = %v, want exit only", panicBlk.Succs)
	}
}

func TestDefersRecordedInOrder(t *testing.T) {
	g := buildFunc(t, `func f() {
		defer println("first")
		defer println("second")
	}`, "f")
	if len(g.Defers) != 2 {
		t.Fatalf("recorded %d defers, want 2", len(g.Defers))
	}
	if g.Defers[0].Pos() > g.Defers[1].Pos() {
		t.Fatal("defers recorded out of registration order")
	}
}

func TestRangeLoopRecorded(t *testing.T) {
	g := buildFunc(t, `func f(xs []int) int {
		total := 0
		for _, x := range xs {
			total += x
		}
		return total
	}`, "f")
	if len(g.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(g.Loops))
	}
	if _, ok := g.Loops[0].Stmt.(*ast.RangeStmt); !ok {
		t.Fatalf("loop stmt is %T, want *ast.RangeStmt", g.Loops[0].Stmt)
	}
	if len(g.Loops[0].Latches) == 0 {
		t.Fatal("range loop has no back edge")
	}
}

func TestSwitchArmsRejoin(t *testing.T) {
	g := buildFunc(t, `func f(n int) int {
		switch n {
		case 1:
			n = 10
		case 2:
			n = 20
		default:
			n = 30
		}
		return n
	}`, "f")
	// Every path from entry reaches the exit exactly through the return.
	live := reachable(g)
	if !live[g.Exit] {
		t.Fatal("exit unreachable through the switch")
	}
	if len(g.Exit.Preds) != 1 {
		t.Fatalf("exit has %d preds, want 1 (the single return)", len(g.Exit.Preds))
	}
}
