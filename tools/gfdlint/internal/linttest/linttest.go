// Package linttest is a dependency-free analysistest look-alike: it loads
// a fixture package from a testdata/src tree, runs one analyzer over it,
// and checks the reported diagnostics against `// want "regexp"` comments
// on the offending lines. Fixture trees are real modules (testdata/src has
// its own go.mod) so the loader exercises the same `go list` path as the
// CLI; GOWORK=off keeps the repo's workspace file out of the picture.
package linttest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/tools/gfdlint/internal/lint"
	"repro/tools/gfdlint/internal/load"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.+)$`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads srcdir's fixture package pkg and checks analyzer a against its
// want comments, returning the findings and their FileSet for any extra
// assertions (e.g. applying suggested fixes against a golden file).
func Run(t *testing.T, srcdir string, a *lint.Analyzer, pkg string) ([]lint.Finding, *token.FileSet) {
	t.Helper()
	return RunSuite(t, srcdir, []*lint.Analyzer{a}, pkg)
}

// RunSuite is Run for several analyzers at once: interactions between
// passes — like the allow-audit, which only fires for directives no other
// analyzer's suppressed finding claimed — need the whole suite in one run.
func RunSuite(t *testing.T, srcdir string, as []*lint.Analyzer, pkg string) ([]lint.Finding, *token.FileSet) {
	t.Helper()
	pkgs, err := load.Load(load.Config{Dir: srcdir, Env: []string{"GOWORK=off"}}, "./"+pkg)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkg, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", pkg)
	}

	type key struct {
		file string
		line int
	}
	type expectation struct {
		re      *regexp.Regexp
		matched bool
	}
	want := map[key][]*expectation{}

	var findings []lint.Finding
	for _, p := range pkgs {
		// Collect want comments from the fixture sources.
		for _, f := range p.Files {
			name := p.Fset.Position(f.Pos()).Filename
			src, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(src), "\n") {
				m := wantRE.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				k := key{filepath.Base(name), i + 1}
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, arg[1], err)
					}
					want[k] = append(want[k], &expectation{re: re})
				}
			}
		}
		findings = append(findings, lint.RunAnalyzers(p.Fset, p.Files, p.Types, p.Info, as)...)
	}

	for _, f := range findings {
		pos := f.Position(pkgs[0].Fset)
		k := key{filepath.Base(pos.Filename), pos.Line}
		matched := false
		for _, exp := range want[k] {
			if !exp.matched && exp.re.MatchString(f.Diag.Message) {
				exp.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posString(pos.Filename, pos.Line, pos.Column), f.Diag.Message)
		}
	}
	for k, exps := range want {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s:%d: no diagnostic matched want %q", k.file, k.line, exp.re)
			}
		}
	}
	return findings, pkgs[0].Fset
}

func posString(file string, line, col int) string {
	return fmt.Sprintf("%s:%d:%d", filepath.Base(file), line, col)
}
