// Package repro is a reproduction of "Parallel Reasoning of Graph
// Functional Dependencies" (Fan, Liu, Cao; ICDE 2018): sequential and
// parallel-scalable algorithms for the satisfiability and implication
// analyses of GFDs, with every substrate (property graphs, pattern
// matching, canonical graphs, the Eq equivalence relation, a simulated
// cluster runtime, workload generators and a chase baseline) implemented
// from scratch on the Go standard library.
//
// See README.md for the quickstart, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The root-level benchmarks in bench_test.go regenerate every table and
// figure of the paper's evaluation at a reduced scale; cmd/benchall runs
// the full harness.
package repro
