// Socialnetwork reproduces the paper's ϕ4 scenario: credibility rules on a
// Pokec-style social graph. Blogs posted by a domain expert and a
// non-expert on the same topic with opposite accounts mark the
// non-expert's blog as low-trust; the example then checks the rule set
// stays consistent when a moderation rule is added, using ParSat.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gfd"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// phi4: if person x (expert in the blog's field) posts w1, person y posts
// w2, and w2 opposes w1 on the same topic, then w2 is low-trust.
func phi4() *gfd.GFD {
	p := pattern.New()
	x := p.AddVar("x", "person")
	y := p.AddVar("y", "person")
	f := p.AddVar("f", "field")
	w1 := p.AddVar("w1", "blog")
	w2 := p.AddVar("w2", "blog")
	p.AddEdge(x, f, "expertIn")
	p.AddEdge(x, w1, "post")
	p.AddEdge(y, w2, "post")
	p.AddEdge(w2, w1, "opposite")
	p.AddEdge(w1, f, "about")
	return gfd.MustNew("phi4", p,
		[]gfd.Literal{gfd.Vars(w1, "topic", w2, "topic")},
		[]gfd.Literal{gfd.Const(w2, "trust", "low")})
}

func main() {
	rules := gfd.NewSet(phi4())

	// A small social graph: a database researcher and a politician blog
	// about the future of databases (the paper's own example).
	g := graph.New()
	scientist := g.AddNode("person")
	politician := g.AddNode("person")
	db := g.AddNode("field")
	g.AddEdge(scientist, db, "expertIn")
	b1 := g.AddNodeWithAttrs("blog", map[string]string{"topic": "future-of-db"})
	b2 := g.AddNodeWithAttrs("blog", map[string]string{"topic": "future-of-db"})
	g.AddEdge(scientist, b1, "post")
	g.AddEdge(politician, b2, "post")
	g.AddEdge(b2, b1, "opposite")
	g.AddEdge(b1, db, "about")

	// The graph does not yet record trust: ϕ4 flags b2.
	if ok, v := core.Satisfies(g, rules); !ok {
		fmt.Printf("moderation hit: blog %d should be trust=low (rule %s)\n",
			v.Match[4], v.GFD.Name)
		g.SetAttr(v.Match[4], "trust", "low")
	}
	if ok, _ := core.Satisfies(g, rules); ok {
		fmt.Println("after repair the graph satisfies the rules")
	}

	// Rule evolution: a proposed rule says expert-opposed blogs are
	// high-trust when verified. Check the combined set is still
	// satisfiable before deployment — with ParSat, as a moderation service
	// would at scale.
	p := pattern.New()
	w := p.AddVar("w", "blog")
	proposed := gfd.MustNew("verified-high", p,
		[]gfd.Literal{gfd.Const(w, "verified", "yes")},
		[]gfd.Literal{gfd.Const(w, "trust", "high")})

	res := core.ParSat(gfd.NewSet(phi4(), proposed), core.DefaultParOptions(4))
	fmt.Printf("rule set with verified-high is consistent: %v\n", res.Satisfiable)

	// A bad pair marks every blog both low and high unconditionally — the
	// satisfiability check catches the conflict before deployment.
	mkAll := func(name, trust string) *gfd.GFD {
		q := pattern.New()
		v := q.AddVar("w", "blog")
		return gfd.MustNew(name, q, nil, []gfd.Literal{gfd.Const(v, "trust", trust)})
	}
	res = core.ParSat(gfd.NewSet(phi4(), mkAll("always-high", "high"), mkAll("always-low", "low")), core.DefaultParOptions(4))
	fmt.Printf("rule set with always-high + always-low is consistent: %v", res.Satisfiable)
	if !res.Satisfiable {
		fmt.Printf("  (conflict: %v)", res.Conflict)
	}
	fmt.Println()
}
