// Quickstart: define GFDs, check a graph against them, and run the two
// static analyses — satisfiability and implication — sequentially and in
// parallel.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gfd"
	"repro/internal/graph"
	"repro/internal/pattern"
)

func main() {
	// A GFD is a graph pattern plus an attribute dependency X → Y.
	// ϕ: every car with a topSpeed edge to a speed node has one speed value
	// (the paper's ϕ2, specialized): if two speed nodes hang off the same
	// car, their values must agree.
	p := pattern.New()
	car := p.AddVar("x", graph.Wildcard) // wildcard: any entity type
	s1 := p.AddVar("y", "speed")
	s2 := p.AddVar("z", "speed")
	p.AddEdge(car, s1, "topSpeed")
	p.AddEdge(car, s2, "topSpeed")
	phi := gfd.MustNew("functional-topSpeed", p, nil,
		[]gfd.Literal{gfd.Vars(s1, "val", s2, "val")})
	fmt.Println("GFD:", phi)

	// Build a graph violating it (DBpedia's tank anecdote from Example 1).
	g := graph.New()
	tank := g.AddNode("tank")
	v1 := g.AddNodeWithAttrs("speed", map[string]string{"val": "24.076"})
	v2 := g.AddNodeWithAttrs("speed", map[string]string{"val": "33.336"})
	g.AddEdge(tank, v1, "topSpeed")
	g.AddEdge(tank, v2, "topSpeed")

	set := gfd.NewSet(phi)
	if ok, v := core.Satisfies(g, set); !ok {
		fmt.Printf("violation caught: %s at match %v\n", v.GFD.Name, v.Match)
	}

	// Satisfiability: is the rule set itself consistent? Add a conflicting
	// rule and watch SeqSat reject the set.
	q := pattern.New()
	q.AddVar("x", "speed")
	bad1 := gfd.MustNew("speed-is-1", q, nil, []gfd.Literal{gfd.Const(0, "val", "1")})
	q2 := pattern.New()
	q2.AddVar("x", "speed")
	bad2 := gfd.MustNew("speed-is-2", q2, nil, []gfd.Literal{gfd.Const(0, "val", "2")})

	res := core.SeqSat(gfd.NewSet(phi, bad1, bad2))
	fmt.Printf("satisfiable with conflicting rules? %v (%v)\n", res.Satisfiable, res.Conflict)

	res = core.SeqSat(gfd.NewSet(phi, bad1))
	fmt.Printf("satisfiable without the conflict?  %v\n", res.Satisfiable)

	// Implication: speed-is-1 implies any weakening of itself, so the
	// weaker rule is redundant and can be pruned.
	q3 := pattern.New()
	q3.AddVar("x", "speed")
	weaker := gfd.MustNew("weaker", q3,
		[]gfd.Literal{gfd.Const(0, "kind", "max")}, // stronger antecedent
		[]gfd.Literal{gfd.Const(0, "val", "1")})
	imp := core.SeqImp(gfd.NewSet(bad1), weaker)
	fmt.Printf("redundant rule detected? %v (%s)\n", imp.Implied, imp.Reason)

	// The same checks run in parallel with p workers and identical answers.
	par := core.ParSat(gfd.NewSet(phi, bad1, bad2), core.DefaultParOptions(4))
	fmt.Printf("ParSat agrees: %v\n", par.Satisfiable == false)
	pimp := core.ParImp(gfd.NewSet(bad1), weaker, core.DefaultParOptions(4))
	fmt.Printf("ParImp agrees: %v\n", pimp.Implied == true)
}
