// Ruleopt demonstrates the paper's optimization use case for implication
// (Section I): a rule-based cleaning pipeline mines GFDs from a graph, then
// prunes the redundant ones — rules implied by the rest of the set — so
// downstream error detection enforces fewer rules with the same power.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/discovery"
	"repro/internal/gfd"
	"repro/internal/graph"
)

func main() {
	// Mine rules from a YAGO2-profile synthetic graph (the discovery
	// substrate standing in for the paper's reference [23]).
	prof := dataset.YAGO2()
	g := prof.SampleGraph(dataset.GraphConfig{Nodes: 400, Seed: 42})
	mined := discovery.Mine(g, discovery.Config{MinSupport: 4, MaxK: 3, MaxRules: 60})
	fmt.Printf("mined %d rules from a %d-node %s-profile graph\n",
		mined.Len(), g.NumNodes(), prof.Name)

	// Rule authors also add hand-written variants; some are redundant —
	// implied by the mined set. Weakened copies of mined rules (stronger
	// antecedent, partial consequent) model that.
	candidates := append([]*gfd.GFD{}, mined.GFDs...)
	for i := 0; i < 5 && i < mined.Len(); i++ {
		base := mined.GFDs[i*7%mined.Len()]
		weak := gfd.MustNew(base.Name+"-manual", base.Pattern,
			append(append([]gfd.Literal{}, base.X...), gfd.Const(0, "extraCond", "yes")),
			base.Y[:1])
		candidates = append(candidates, weak)
	}
	fmt.Printf("rule candidates after manual additions: %d\n", len(candidates))

	// Prune: a rule implied by the others is redundant. Greedy backward
	// elimination with ParImp.
	kept := append([]*gfd.GFD{}, candidates...)
	removed := 0
	opt := core.DefaultParOptions(4)
	for i := 0; i < len(kept); {
		candidate := kept[i]
		rest := gfd.NewSet(append(append([]*gfd.GFD{}, kept[:i]...), kept[i+1:]...)...)
		if core.ParImp(rest, candidate, opt).Implied {
			kept = append(kept[:i], kept[i+1:]...)
			removed++
			continue
		}
		i++
	}
	fmt.Printf("pruned %d redundant rules; %d remain\n", removed, len(kept))

	// The pruned set detects exactly the same violations: seed an error
	// and compare.
	dirty := g.Clone()
	// Corrupt every attribute of a few nodes to create violations
	// deterministically (constant rules on those labels must now fail).
	for n := 0; n < 3 && n < dirty.NumNodes(); n++ {
		for a := range dirty.Attrs(graph.NodeID(n)) {
			dirty.SetAttr(graph.NodeID(n), a, "corrupted")
		}
	}
	full := core.Violations(dirty, gfd.NewSet(candidates...))
	pruned := core.Violations(dirty, gfd.NewSet(kept...))
	fmt.Printf("violations found: full set %d, pruned set %d\n", len(full), len(pruned))
	if (len(full) > 0) == (len(pruned) > 0) {
		fmt.Println("pruned set preserves detection power on this error")
	}
}
