// Knowledgebase reproduces the paper's motivating scenario (Example 1):
// validating data-quality rules over a DBpedia-style knowledge graph, then
// using them to catch semantic inconsistencies — ϕ1 (locatedIn/partOf
// cycles), ϕ2 (functional topSpeed) and ϕ3 (president/vice-president
// nationality).
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gfd"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// phi1: for any place x located in place y, y must not also be part of x.
func phi1() *gfd.GFD {
	p := pattern.New()
	x := p.AddVar("x", "place")
	y := p.AddVar("y", "place")
	p.AddEdge(x, y, "locatedIn")
	p.AddEdge(y, x, "partOf")
	phi, _ := gfd.NewFalse("phi1", p, nil)
	return phi
}

// phi2: topSpeed is a functional property of any entity.
func phi2() *gfd.GFD {
	p := pattern.New()
	x := p.AddVar("x", graph.Wildcard)
	y := p.AddVar("y", "speed")
	z := p.AddVar("z", "speed")
	p.AddEdge(x, y, "topSpeed")
	p.AddEdge(x, z, "topSpeed")
	return gfd.MustNew("phi2", p, nil, []gfd.Literal{gfd.Vars(y, "val", z, "val")})
}

// phi3: a president and vice president of the same country share the
// nationality value.
func phi3() *gfd.GFD {
	p := pattern.New()
	x := p.AddVar("x", "person")
	y := p.AddVar("y", "person")
	z := p.AddVar("z", "country")
	w1 := p.AddVar("w1", "nationality")
	w2 := p.AddVar("w2", "nationality")
	p.AddEdge(x, z, "presidentOf")
	p.AddEdge(y, z, "vicePresidentOf")
	p.AddEdge(x, w1, "nationality")
	p.AddEdge(y, w2, "nationality")
	return gfd.MustNew("phi3", p,
		[]gfd.Literal{gfd.Vars(x, "country", y, "country")},
		[]gfd.Literal{gfd.Vars(w1, "val", w2, "val")})
}

func main() {
	rules := gfd.NewSet(phi1(), phi2(), phi3())

	// Step 1 (the paper's satisfiability use case): validate that the rule
	// set is not "dirty" itself before deploying it for error detection.
	// ϕ1 has a false consequent, so a *model* for all three cannot exist
	// (a model must match every pattern) — but pairwise and on real data
	// the rules are consistent; what matters is that ϕ2 and ϕ3 together
	// have a model.
	res := core.SeqSat(gfd.NewSet(phi2(), phi3()))
	fmt.Printf("ϕ2 ∧ ϕ3 consistent: %v\n", res.Satisfiable)

	// Step 2: error detection on a DBpedia-like fragment containing the
	// paper's three real anecdotes.
	g := graph.New()

	// Bamburi airport / Bamburi (violates ϕ1).
	airport := g.AddNode("place")
	town := g.AddNode("place")
	g.AddEdge(airport, town, "locatedIn")
	g.AddEdge(town, airport, "partOf")

	// Tank with two top speeds (violates ϕ2).
	tank := g.AddNode("tank")
	s1 := g.AddNodeWithAttrs("speed", map[string]string{"val": "24.076"})
	s2 := g.AddNodeWithAttrs("speed", map[string]string{"val": "33.336"})
	g.AddEdge(tank, s1, "topSpeed")
	g.AddEdge(tank, s2, "topSpeed")

	// Botswana's president/vice-president nationality mismatch (violates ϕ3).
	pres := g.AddNodeWithAttrs("person", map[string]string{"country": "Botswana"})
	vice := g.AddNodeWithAttrs("person", map[string]string{"country": "Botswana"})
	botswana := g.AddNode("country")
	n1 := g.AddNodeWithAttrs("nationality", map[string]string{"val": "Botswana"})
	n2 := g.AddNodeWithAttrs("nationality", map[string]string{"val": "Tswana"})
	g.AddEdge(pres, botswana, "presidentOf")
	g.AddEdge(vice, botswana, "vicePresidentOf")
	g.AddEdge(pres, n1, "nationality")
	g.AddEdge(vice, n2, "nationality")

	// A clean entity for contrast.
	clean := g.AddNode("place")
	region := g.AddNode("place")
	g.AddEdge(clean, region, "locatedIn")

	violations := core.Violations(g, rules)
	fmt.Printf("found %d inconsistencies:\n", len(violations))
	for _, v := range violations {
		fmt.Printf("  rule %-5s violated at nodes %v\n", v.GFD.Name, v.Match)
	}
}
