// Benchmarks regenerating the paper's evaluation (Section VII): one
// benchmark per table/figure, at a reduced fixed scale so `go test -bench=.`
// completes quickly. The full parameter sweeps with paper-style tables are
// produced by `go run ./cmd/benchall` (internal/bench holds the harness);
// EXPERIMENTS.md records paper-vs-measured shapes.
package repro

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/gfd"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/pattern"
	"repro/internal/rdfchase"
)

// benchN is the per-benchmark workload size (the paper uses 6000–10000
// GFDs on a 20-machine cluster; benchmarks run laptop-scale).
const benchN = 150

func benchSet(b *testing.B, prof *dataset.Profile, n, k, l int) *gfd.Set {
	b.Helper()
	g := gen.New(gen.Config{N: n, K: k, L: l, Profile: prof, WildcardRate: 0.2, Seed: 1})
	return g.Set()
}

func benchImp(b *testing.B, prof *dataset.Profile, n, k, l int) (*gfd.Set, *gfd.GFD) {
	b.Helper()
	g := gen.New(gen.Config{N: n, K: k, L: l, Profile: prof, WildcardRate: 0.2, Seed: 1})
	return g.ImpInstance(6)
}

func parOpt(p int) core.ParOptions {
	opt := core.DefaultParOptions(p)
	opt.TTL = 20 * time.Millisecond
	return opt
}

// BenchmarkFig5SequentialTable reproduces Fig. 5: SeqSat, SeqImp and the
// chase baseline ParImpRDF on each dataset's GFDs.
func BenchmarkFig5SequentialTable(b *testing.B) {
	for _, prof := range dataset.All() {
		set := benchSet(b, prof, benchN, 6, 5)
		impSet, phi := benchImp(b, prof, benchN, 6, 5)
		b.Run("SeqSat/"+prof.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SeqSat(set)
			}
		})
		b.Run("SeqImp/"+prof.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SeqImp(impSet, phi)
			}
		})
		b.Run("ParImpRDF/"+prof.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rdfchase.Implies(impSet, phi)
			}
		})
	}
}

// varyP runs a parallel satisfiability benchmark across the paper's p axis.
func benchVaryPSat(b *testing.B, prof *dataset.Profile) {
	set := benchSet(b, prof, 2*benchN, 6, 5)
	for _, p := range []int{4, 12, 20} {
		for _, variant := range []string{"full", "np", "nb"} {
			opt := parOpt(p)
			switch variant {
			case "np":
				opt.Pipeline = false
			case "nb":
				opt.Splitting = false
			}
			b.Run(fmt.Sprintf("%s/p=%d", variant, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					core.ParSat(set, opt)
				}
			})
		}
	}
}

func benchVaryPImp(b *testing.B, prof *dataset.Profile) {
	set, phi := benchImp(b, prof, 2*benchN, 6, 5)
	for _, p := range []int{4, 12, 20} {
		for _, variant := range []string{"full", "np", "nb"} {
			opt := parOpt(p)
			switch variant {
			case "np":
				opt.Pipeline = false
			case "nb":
				opt.Splitting = false
			}
			b.Run(fmt.Sprintf("%s/p=%d", variant, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					core.ParImp(set, phi, opt)
				}
			})
		}
	}
}

// BenchmarkFig6aVaryPSatDBpedia reproduces Fig. 6(a).
func BenchmarkFig6aVaryPSatDBpedia(b *testing.B) { benchVaryPSat(b, dataset.DBpedia()) }

// BenchmarkFig6bVaryPSatYAGO2 reproduces Fig. 6(b).
func BenchmarkFig6bVaryPSatYAGO2(b *testing.B) { benchVaryPSat(b, dataset.YAGO2()) }

// BenchmarkFig6cVaryPImpDBpedia reproduces Fig. 6(c).
func BenchmarkFig6cVaryPImpDBpedia(b *testing.B) { benchVaryPImp(b, dataset.DBpedia()) }

// BenchmarkFig6dVaryPImpYAGO2 reproduces Fig. 6(d).
func BenchmarkFig6dVaryPImpYAGO2(b *testing.B) { benchVaryPImp(b, dataset.YAGO2()) }

// BenchmarkFig6eVarySigmaSat reproduces Fig. 6(e): satisfiability vs |Σ|
// (synthetic, k=6, l=5, p=4).
func BenchmarkFig6eVarySigmaSat(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		g := gen.New(gen.Config{N: n, K: 6, L: 5, Seed: 1})
		set := g.Set()
		b.Run(fmt.Sprintf("SeqSat/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SeqSat(set)
			}
		})
		b.Run(fmt.Sprintf("ParSat/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ParSat(set, parOpt(4))
			}
		})
	}
}

// BenchmarkFig6fVarySigmaImp reproduces Fig. 6(f): implication vs |Σ|,
// including the chase baseline.
func BenchmarkFig6fVarySigmaImp(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		g := gen.New(gen.Config{N: n, K: 6, L: 5, Seed: 1})
		set, phi := g.ImpInstance(6)
		b.Run(fmt.Sprintf("SeqImp/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SeqImp(set, phi)
			}
		})
		b.Run(fmt.Sprintf("ParImp/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ParImp(set, phi, parOpt(4))
			}
		})
		b.Run(fmt.Sprintf("ParImpRDF/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rdfchase.Implies(set, phi)
			}
		})
	}
}

// BenchmarkFig6gVaryKSat reproduces Fig. 6(g): satisfiability vs pattern
// size k (l=3, p=4, DBpedia seeds).
func BenchmarkFig6gVaryKSat(b *testing.B) {
	for _, k := range []int{2, 6, 10} {
		set := benchSet(b, dataset.DBpedia(), benchN, k, 3)
		b.Run(fmt.Sprintf("SeqSat/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SeqSat(set)
			}
		})
		b.Run(fmt.Sprintf("ParSat/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ParSat(set, parOpt(4))
			}
		})
	}
}

// BenchmarkFig6hVaryLSat reproduces Fig. 6(h): satisfiability vs literal
// count l (k=5).
func BenchmarkFig6hVaryLSat(b *testing.B) {
	for _, l := range []int{1, 3, 5} {
		set := benchSet(b, dataset.DBpedia(), benchN, 5, l)
		b.Run(fmt.Sprintf("SeqSat/l=%d", l), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SeqSat(set)
			}
		})
		b.Run(fmt.Sprintf("ParSat/l=%d", l), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ParSat(set, parOpt(4))
			}
		})
	}
}

// BenchmarkFig6iVaryKImp reproduces Fig. 6(i): implication vs k.
func BenchmarkFig6iVaryKImp(b *testing.B) {
	for _, k := range []int{2, 6, 10} {
		set, phi := benchImp(b, dataset.DBpedia(), benchN, k, 3)
		b.Run(fmt.Sprintf("SeqImp/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SeqImp(set, phi)
			}
		})
		b.Run(fmt.Sprintf("ParImp/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ParImp(set, phi, parOpt(4))
			}
		})
	}
}

// BenchmarkFig6jVaryLImp reproduces Fig. 6(j): implication vs l.
func BenchmarkFig6jVaryLImp(b *testing.B) {
	for _, l := range []int{1, 3, 5} {
		set, phi := benchImp(b, dataset.DBpedia(), benchN, 5, l)
		b.Run(fmt.Sprintf("SeqImp/l=%d", l), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SeqImp(set, phi)
			}
		})
		b.Run(fmt.Sprintf("ParImp/l=%d", l), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ParImp(set, phi, parOpt(4))
			}
		})
	}
}

// BenchmarkFig6kVaryTTLSat reproduces Fig. 6(k): the straggler TTL sweep
// for satisfiability (p=4); the paper's 0.1s–8s axis maps to milliseconds
// at this workload scale.
func BenchmarkFig6kVaryTTLSat(b *testing.B) {
	set := benchSet(b, dataset.DBpedia(), benchN, 6, 3)
	for _, ttl := range []time.Duration{time.Millisecond, 20 * time.Millisecond, 80 * time.Millisecond} {
		opt := parOpt(4)
		opt.TTL = ttl
		b.Run(fmt.Sprintf("TTL=%v", ttl), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ParSat(set, opt)
			}
		})
	}
}

// benchMatchWorkload builds the label-dense matching workload shared by
// the BenchmarkMatch* trio: a dense consistent data graph (every node
// carries a fat multi-label adjacency, every label a large candidate set)
// plus triangle patterns walked out of the generator's own schema. The
// closing edge of each triangle is satisfied by only a few percent of the
// two-hop paths, so the search rejects most partial assignments — exactly
// the adjacency-filtering work the index accelerates. (Tree patterns on a
// dense graph are output-bound instead: nearly every branch succeeds and
// enumeration cost is owned by match materialization, which no index can
// shrink.) The workload is bench.MatchWorkload at the default workload
// seed — exactly the one the CI regression gate measures.
func benchMatchWorkload(b *testing.B) (*graph.Graph, []*pattern.Pattern) {
	b.Helper()
	g, ps, err := bench.MatchWorkload(1)
	if err != nil {
		b.Fatal(err)
	}
	return g, ps
}

// benchMatch fully enumerates every pattern's homomorphisms against the
// given representation of the workload graph. Full enumeration (rather
// than a match cap) keeps the modes comparable: all explore exactly the
// same search tree, so the measured difference is pure per-trial filtering
// cost.
func benchMatch(b *testing.B, g graph.Reader, ps []*pattern.Pattern, scan bool) {
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			s := match.NewSearch(p, g, match.Options{Scan: scan})
			total += s.CountAll()
		}
	}
	if total == 0 {
		b.Fatal("workload produced no matches; benchmark is vacuous")
	}
}

// BenchmarkMatchIndexed measures the matching inner loop on the mutable
// graph's label-keyed adjacency index with signature pruning.
func BenchmarkMatchIndexed(b *testing.B) {
	g, ps := benchMatchWorkload(b)
	benchMatch(b, g, ps, false)
}

// BenchmarkMatchFrozen runs the identical enumeration on the frozen CSR
// snapshot of the same workload graph: the two-representation acceptance
// gate is that this stays within a few percent of (or beats)
// BenchmarkMatchIndexed.
func BenchmarkMatchFrozen(b *testing.B) {
	g, ps := benchMatchWorkload(b)
	f := g.Frozen()
	benchMatch(b, f, ps, false)
}

// BenchmarkMatchScan is the before-measurement: the same enumeration forced
// down the pre-index path (linear filtering of raw Out/In slices, linear
// HasEdge). Compare with BenchmarkMatchIndexed for the index speedup.
func BenchmarkMatchScan(b *testing.B) {
	g, ps := benchMatchWorkload(b)
	benchMatch(b, g, ps, true)
}

// BenchmarkMatchSharded fans the same enumeration out per shard of the
// sharded snapshot at the CI gate's worker width: each shard's slice of the
// root candidate set runs as an independent search. Compare with
// BenchmarkMatchFrozen for the parallel speedup (bounded by core count; on
// one core it measures the fan-out overhead, which the CI gate bounds).
func BenchmarkMatchSharded(b *testing.B) {
	g, ps := benchMatchWorkload(b)
	s := g.Frozen().Sharded(bench.CIShardWorkers)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			total += match.CountSharded(p, s, bench.CIShardWorkers, match.Options{})
		}
	}
	if total == 0 {
		b.Fatal("workload produced no matches; benchmark is vacuous")
	}
}

// BenchmarkParSatSharded measures the work-stealing executor against the
// single-global-queue coordinator on the shared parallel-reasoning
// workload (bench.ParWorkload, the one the CI gate's parsat_steal_speedup
// ratio is measured on): 8 workers, millisecond TTL so straggler splitting
// fires and split branches exercise the local deques.
func BenchmarkParSatSharded(b *testing.B) {
	set, opt := bench.ParWorkload(1)
	for _, variant := range []string{"steal", "central"} {
		o := opt
		o.Stealing = variant == "steal"
		b.Run(variant, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ParSat(set, o)
			}
		})
	}
}

// BenchmarkRefreezeIncremental measures Frozen.Refreeze merging a 1% delta
// into the 100k-edge hub-heavy ingest base (bench.RefreezeWorkload, the
// workload the CI gate's refreeze_speedup ratio is measured on). Each
// iteration refreezes a pre-built delta whose overlay already materialized
// the merged rows — the lifecycle position Refreeze runs in. Compare with
// BenchmarkRefreezeRebuild for the incremental speedup.
func BenchmarkRefreezeIncremental(b *testing.B) {
	base, mkDelta, _, _, _ := bench.RefreezeWorkload(1)
	d := mkDelta()
	d.Overlay()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base.Refreeze(d)
	}
}

// BenchmarkRefreezeRebuild is the from-scratch comparison: Builder.Freeze
// over the final-state edge arrays of the same workload.
func BenchmarkRefreezeRebuild(b *testing.B) {
	_, _, from, to, lab := bench.RefreezeWorkload(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.IngestFrozen(from, to, lab)
	}
}

// BenchmarkSnapshotLoad measures graph.ReadSnapshot of the ingest base's
// binary image (the workload the CI gate's snapshot_load_speedup ratio is
// measured on). Compare with BenchmarkSnapshotRebuild for the load speedup.
func BenchmarkSnapshotLoad(b *testing.B) {
	from, to, lab := bench.HubHeavyIngest(1)
	img, err := bench.SnapshotImage(bench.IngestFrozen(from, to, lab))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.ReadSnapshot(bytes.NewReader(img)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotRebuild is the from-edges comparison: Builder.Freeze over
// the same workload's raw arrays — what serving would pay without the image.
func BenchmarkSnapshotRebuild(b *testing.B) {
	from, to, lab := bench.HubHeavyIngest(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.IngestFrozen(from, to, lab)
	}
}

// BenchmarkSnapshotSave measures graph.Frozen.WriteSnapshot of the same
// base to memory.
func BenchmarkSnapshotSave(b *testing.B) {
	from, to, lab := bench.HubHeavyIngest(1)
	f := bench.IngestFrozen(from, to, lab)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.SnapshotImage(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRefreezeDeadBase and BenchmarkRefreezeCompacted bracket the CI
// gate's compact_refreeze_speedup ratio: identical 1%-scale churn refrozen
// against the 30%-dead base and against its compacted equivalent.
func BenchmarkRefreezeDeadBase(b *testing.B) {
	deadBase, _, _, mkDead, _, err := bench.CompactWorkload(1)
	if err != nil {
		b.Fatal(err)
	}
	d := mkDead()
	d.Overlay()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deadBase.Refreeze(d)
	}
}

func BenchmarkRefreezeCompacted(b *testing.B) {
	_, compacted, _, _, mkCompact, err := bench.CompactWorkload(1)
	if err != nil {
		b.Fatal(err)
	}
	d := mkCompact()
	d.Overlay()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compacted.Refreeze(d)
	}
}

// BenchmarkWALRecover measures graph.Recover replaying the canonical
// sampled update stream over its base.
func BenchmarkWALRecover(b *testing.B) {
	base, apply := bench.WALWorkload(1)
	var log bytes.Buffer
	w := graph.NewWAL(&log, graph.NewDelta(base))
	apply(w)
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(log.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := graph.Recover(base, bytes.NewReader(log.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRevalidateIncremental measures core.Revalidate re-validating the
// triangle workload after a small delta (bench.ValidateWorkload, the CI
// gate's incr_validate_speedup workload). Compare with
// BenchmarkRevalidateFull.
func BenchmarkRevalidateIncremental(b *testing.B) {
	set, base, delta, err := bench.ValidateWorkload(1)
	if err != nil {
		b.Fatal(err)
	}
	prev := core.Violations(base, set)
	delta.Overlay()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RevalidateDelta(set, delta, prev, core.RevalidateOptions{})
	}
}

// BenchmarkRevalidateFull is the full recomputation over the same overlay.
func BenchmarkRevalidateFull(b *testing.B) {
	set, _, delta, err := bench.ValidateWorkload(1)
	if err != nil {
		b.Fatal(err)
	}
	overlay := delta.Overlay()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Violations(overlay, set)
	}
}

// BenchmarkFig6lVaryTTLImp reproduces Fig. 6(l): the TTL sweep for
// implication.
func BenchmarkFig6lVaryTTLImp(b *testing.B) {
	set, phi := benchImp(b, dataset.DBpedia(), benchN, 6, 3)
	for _, ttl := range []time.Duration{time.Millisecond, 20 * time.Millisecond, 80 * time.Millisecond} {
		opt := parOpt(4)
		opt.TTL = ttl
		b.Run(fmt.Sprintf("TTL=%v", ttl), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ParImp(set, phi, opt)
			}
		})
	}
}
