// Command gfdreason checks the satisfiability of a GFD set, the implication
// of a target GFD, or the satisfaction of a data graph, from files in the
// gfdio text formats.
//
// Usage:
//
//	gfdreason sat   [-p 4] [-seq] sigma.gfd
//	gfdreason imp   [-p 4] [-seq] [-baseline] sigma.gfd target.gfd
//	gfdreason check sigma.gfd graph.txt
//
// sat prints SATISFIABLE or UNSATISFIABLE (with the conflicting attribute),
// imp prints IMPLIED or NOT-IMPLIED, check prints the violations of the
// rules in the graph. Exit status 0 on success, 1 on a negative check
// answer, 2 on usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/gfd"
	"repro/internal/gfdio"
	"repro/internal/rdfchase"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	workers := fs.Int("p", 4, "parallel workers (ignored with -seq)")
	seq := fs.Bool("seq", false, "use the sequential algorithm")
	baseline := fs.Bool("baseline", false, "imp only: use the chase baseline (ParImpRDF)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	args := fs.Args()

	switch cmd {
	case "sat":
		if len(args) != 1 {
			usage()
		}
		set := readSet(args[0])
		var res *core.SatResult
		if *seq {
			res = core.SeqSat(set)
		} else {
			res = core.ParSat(set, core.DefaultParOptions(*workers))
		}
		if res.Satisfiable {
			fmt.Println("SATISFIABLE")
			return
		}
		fmt.Printf("UNSATISFIABLE: %v\n", res.Conflict)
		os.Exit(1)
	case "imp":
		if len(args) != 2 {
			usage()
		}
		set := readSet(args[0])
		targets := readSet(args[1])
		if targets.Len() != 1 {
			fatalf("target file must contain exactly one GFD, got %d", targets.Len())
		}
		phi := targets.GFDs[0]
		var implied bool
		var reason string
		switch {
		case *baseline:
			implied = rdfchase.Implies(set, phi).Implied
			reason = "chase fixpoint"
		case *seq:
			r := core.SeqImp(set, phi)
			implied, reason = r.Implied, r.Reason.String()
		default:
			r := core.ParImp(set, phi, core.DefaultParOptions(*workers))
			implied, reason = r.Implied, r.Reason.String()
		}
		if implied {
			fmt.Printf("IMPLIED (%s)\n", reason)
			return
		}
		fmt.Println("NOT-IMPLIED")
		os.Exit(1)
	case "check":
		if len(args) != 2 {
			usage()
		}
		set := readSet(args[0])
		f, err := os.Open(args[1])
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		// Validation is read-only over a potentially large graph: ingest
		// through the bulk-load Builder and check against the CSR snapshot.
		g, err := gfdio.ReadFrozenGraph(f)
		if err != nil {
			fatalf("parse %s: %v", args[1], err)
		}
		vs := core.Violations(g, set)
		if len(vs) == 0 {
			fmt.Println("CLEAN: graph satisfies all rules")
			return
		}
		for _, v := range vs {
			fmt.Printf("violation of %s at %v\n", v.GFD.Name, v.Match)
		}
		os.Exit(1)
	default:
		usage()
	}
}

func readSet(path string) *gfd.Set {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	set, err := gfdio.ReadGFDs(f)
	if err != nil {
		fatalf("parse %s: %v", path, err)
	}
	return set
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  gfdreason sat   [-p 4] [-seq] sigma.gfd
  gfdreason imp   [-p 4] [-seq] [-baseline] sigma.gfd target.gfd
  gfdreason check sigma.gfd graph.txt`)
	os.Exit(2)
}
