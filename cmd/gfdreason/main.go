// Command gfdreason checks the satisfiability of a GFD set, the implication
// of a target GFD, or the satisfaction of a data graph, from files in the
// gfdio formats, and manages the persistent graph store (binary snapshots
// plus a write-ahead delta log).
//
// Usage:
//
//	gfdreason sat      [-p 4] [-seq] sigma.gfd
//	gfdreason imp      [-p 4] [-seq] [-baseline] sigma.gfd target.gfd
//	gfdreason check    [-wal updates.wal] sigma.gfd graph
//	gfdreason snapshot [-compact] graph store.snap
//	gfdreason recover  [-threshold 0.25] [-o new.snap] store.snap updates.wal
//
// sat prints SATISFIABLE or UNSATISFIABLE (with the conflicting attribute),
// imp prints IMPLIED or NOT-IMPLIED, check prints the violations of the
// rules in the graph. Exit status 0 on success, 1 on a negative check
// answer, 2 on usage or parse errors, 3 when -timeout expired before the
// run finished — a negative answer (exit 1) and a run that never completed
// (exit 3) are different facts, so they get different codes.
//
// -timeout bounds sat, imp, and check through the engines' cooperative
// cancellation; it needs the parallel algorithms, so it rejects -seq and
// -baseline.
//
// Graph arguments accept either format transparently: the text format or a
// binary snapshot image (sniffed by magic bytes). snapshot converts to the
// binary store (optionally compacting tombstones first); check -wal
// recovers a delta log over the store and validates the composed state, so
// the check pipeline runs against a saved store without rebuilding it;
// recover replays a log (truncating any torn tail), folds it into the
// snapshot via the compaction-policy refreeze, and writes the next store
// image — the log is NOT deleted, remove or rotate it once the new image is
// durable.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/gfd"
	"repro/internal/gfdio"
	"repro/internal/graph"
	"repro/internal/rdfchase"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	workers := fs.Int("p", 4, "parallel workers (ignored with -seq)")
	seq := fs.Bool("seq", false, "use the sequential algorithm")
	baseline := fs.Bool("baseline", false, "imp only: use the chase baseline (ParImpRDF)")
	wal := fs.String("wal", "", "check only: recover this delta log over the graph before checking")
	compact := fs.Bool("compact", false, "snapshot only: drop tombstoned node slots (renumbers IDs)")
	threshold := fs.Float64("threshold", graph.DefaultCompactThreshold,
		"recover only: dead-slot fraction that triggers compaction (0 compacts any dead slot, negative disables)")
	output := fs.String("o", "", "recover only: write the folded snapshot here (default: overwrite the store)")
	timeout := fs.Duration("timeout", 0, "sat/imp/check only: cancel the run after this long and exit 3")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	args := fs.Args()

	ctx := context.Background()
	if *timeout > 0 {
		if *seq || *baseline {
			fatalf("-timeout needs the cooperative cancellation of the parallel algorithms; drop -seq/-baseline")
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	switch cmd {
	case "sat":
		if len(args) != 1 {
			usage()
		}
		set := readSet(args[0])
		var res *core.SatResult
		if *seq {
			res = core.SeqSat(set)
		} else {
			opt := core.DefaultParOptions(*workers)
			opt.Ctx = ctx
			res = core.ParSat(set, opt)
		}
		exitOnRunErr(res.Err)
		sharingNote(res.Stats)
		if res.Satisfiable {
			fmt.Println("SATISFIABLE")
			return
		}
		fmt.Printf("UNSATISFIABLE: %v\n", res.Conflict)
		os.Exit(1)
	case "imp":
		if len(args) != 2 {
			usage()
		}
		set := readSet(args[0])
		targets := readSet(args[1])
		if targets.Len() != 1 {
			fatalf("target file must contain exactly one GFD, got %d", targets.Len())
		}
		phi := targets.GFDs[0]
		var implied bool
		var reason string
		switch {
		case *baseline:
			implied = rdfchase.Implies(set, phi).Implied
			reason = "chase fixpoint"
		case *seq:
			r := core.SeqImp(set, phi)
			implied, reason = r.Implied, r.Reason.String()
		default:
			opt := core.DefaultParOptions(*workers)
			opt.Ctx = ctx
			r := core.ParImp(set, phi, opt)
			exitOnRunErr(r.Err)
			implied, reason = r.Implied, r.Reason.String()
			sharingNote(r.Stats)
		}
		if implied {
			fmt.Printf("IMPLIED (%s)\n", reason)
			return
		}
		fmt.Println("NOT-IMPLIED")
		os.Exit(1)
	case "check":
		if len(args) != 2 {
			usage()
		}
		set := readSet(args[0])
		// Validation is read-only over a potentially large graph: load the
		// CSR snapshot directly (binary store) or ingest through the
		// bulk-load Builder (text format).
		g := readGraph(args[1])
		var data graph.Reader = g
		if *wal != "" {
			// check is read-only: replay without touching the file. A writer
			// may still be appending to this log; RecoverFile's torn-tail
			// truncation here would cut a record the writer goes on to
			// complete, stranding everything after it. Only `recover` — the
			// command that folds the log away — repairs the file.
			lf, err := os.Open(*wal)
			if err != nil {
				fatalf("recover %s: %v", *wal, err)
			}
			d, stats, err := graph.Recover(g, lf)
			lf.Close()
			if err != nil {
				fatalf("recover %s: %v", *wal, err)
			}
			if stats.Truncated {
				fmt.Fprintf(os.Stderr, "note: %s carries a torn tail; checking the %d complete ops (%d bytes)\n",
					*wal, stats.Records, stats.Bytes)
			}
			data = d.Overlay()
		}
		vs, vstats, verr := core.ViolationsOpts(ctx, data, set, core.VerifyOptions{})
		exitOnRunErr(verr)
		// The verdict on stdout stays machine-readable; sharing telemetry
		// goes to stderr like the other notes.
		fmt.Fprintf(os.Stderr, "sharing: %d pattern groups for %d GFDs; %d GFDs shared a pattern, %d matches reused\n",
			vstats.Groups, set.Len(), vstats.SharedGFDs, vstats.MatchesReused)
		if len(vs) == 0 {
			fmt.Println("CLEAN: graph satisfies all rules")
			return
		}
		for _, v := range vs {
			fmt.Printf("violation of %s at %v\n", v.GFD.Name, v.Match)
		}
		os.Exit(1)
	case "snapshot":
		if len(args) != 2 {
			usage()
		}
		g := readGraph(args[0])
		if *compact {
			var remap graph.Remap
			if g, remap = g.Compact(); remap != nil {
				fmt.Fprintf(os.Stderr, "note: compaction dropped %d dead slots and renumbered node IDs\n",
					len(remap)-g.NumNodes())
			}
		}
		writeSnapshot(args[1], g)
		fmt.Printf("wrote %s: %d nodes (%d live), %d edges\n", args[1], g.NumNodes(), g.LiveNodes(), g.NumEdges())
	case "recover":
		if len(args) != 2 {
			usage()
		}
		g := readGraph(args[0])
		d, stats, err := recoverLog(g, args[1])
		if err != nil {
			fatalf("recover %s: %v", args[1], err)
		}
		if stats.Truncated {
			fmt.Fprintf(os.Stderr, "note: %s carried a torn tail; truncated to %d bytes\n", args[1], stats.Bytes)
		}
		// RefreezeOptions treats 0 as "use the default" (the Go options
		// idiom); the flag's 0 means "compact any dead slot", so translate
		// to the smallest positive threshold.
		thr := *threshold
		if thr == 0 {
			thr = math.SmallestNonzeroFloat64
		}
		nf, remap := g.RefreezeOpts(d, graph.RefreezeOptions{CompactThreshold: thr})
		out := *output
		if out == "" {
			out = args[0]
		}
		writeSnapshot(out, nf)
		action, dead := "carried", nf.NumNodes()-nf.LiveNodes()
		if remap != nil {
			action, dead = "compacted away", len(remap)-nf.NumNodes()
		}
		fmt.Printf("replayed %d ops over %s; %s %d dead slots; wrote %s: %d nodes (%d live), %d edges\n",
			stats.Records, args[0], action, dead, out, nf.NumNodes(), nf.LiveNodes(), nf.NumEdges())
	default:
		usage()
	}
}

// recoverLog is graph.RecoverFile for an explicitly named log: the
// library's missing-file-recovers-empty semantic suits restart flows where
// nothing was ever logged, but a user who typed a path wants the typo
// reported, not a silently empty replay.
func recoverLog(base *graph.Frozen, path string) (*graph.Delta, graph.RecoverStats, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, graph.RecoverStats{}, err
	}
	return graph.RecoverFile(base, path)
}

// readGraph loads a data graph in either format (text or binary snapshot).
func readGraph(path string) *graph.Frozen {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	g, err := gfdio.ReadAnyGraph(f)
	if err != nil {
		fatalf("parse %s: %v", path, err)
	}
	return g
}

// writeSnapshot writes the binary store image through the crash-safe
// rewrite protocol (temp + fsync + rename + directory fsync; see
// gfdio.WriteSnapshotAtomic): a crash or I/O failure leaves the previous
// store image intact, never a torn one.
func writeSnapshot(path string, g *graph.Frozen) {
	if err := gfdio.WriteSnapshotAtomic(path, g); err != nil {
		fatalf("%v", err)
	}
}

func readSet(path string) *gfd.Set {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	set, err := gfdio.ReadGFDs(f)
	if err != nil {
		fatalf("parse %s: %v", path, err)
	}
	return set
}

// exitOnRunErr maps an engine run error to the exit contract: a timed-out
// or canceled run exits 3 (the question was never answered, which is not
// the exit-1 negative answer), anything else is a hard error.
func exitOnRunErr(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, core.ErrCanceled) {
		fmt.Fprintf(os.Stderr, "timeout: %v\n", err)
		os.Exit(3)
	}
	fatalf("%v", err)
}

// sharingNote reports how much pattern-level work a reasoning run shared
// across structurally equal GFDs. Silent when the set had no duplicate
// structure, so single-GFD runs stay quiet.
func sharingNote(st core.Stats) {
	if st.GroupsShared > 0 {
		fmt.Fprintf(os.Stderr, "sharing: %d pattern groups enumerated once for multiple GFDs; %d matches reused\n",
			st.GroupsShared, st.MatchesReused)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  gfdreason sat      [-p 4] [-seq] [-timeout 30s] sigma.gfd
  gfdreason imp      [-p 4] [-seq] [-baseline] [-timeout 30s] sigma.gfd target.gfd
  gfdreason check    [-wal updates.wal] [-timeout 30s] sigma.gfd graph
  gfdreason snapshot [-compact] graph store.snap
  gfdreason recover  [-threshold 0.25] [-o new.snap] store.snap updates.wal
graph arguments accept the text format or a binary snapshot image
-timeout cancels the run and exits 3 (distinct from exit 1, a negative answer)`)
	os.Exit(2)
}
