// Command gfdgen generates synthetic GFD workloads (Section VII's
// generator) in the gfdio text format, for use with gfdreason.
//
// Usage:
//
//	gfdgen [-n 100] [-k 4] [-l 3] [-profile dbpedia|yago2|pokec]
//	       [-conflicts 0] [-wildcard 0.1] [-seed 1]
//	       [-imp-target] [-o sigma.gfd]
//
// With -imp-target, an implication instance is produced instead: Σ goes to
// the -o file and a chain-dependent non-implied target GFD to stdout (or
// -target-o).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/gfd"
	"repro/internal/gfdio"
)

func main() {
	n := flag.Int("n", 100, "|Σ|: number of GFDs")
	k := flag.Int("k", 4, "max pattern nodes")
	l := flag.Int("l", 3, "max literals in X and in Y")
	profileName := flag.String("profile", "dbpedia", "dataset profile: dbpedia, yago2, pokec")
	conflicts := flag.Int("conflicts", 0, "inject this many conflicting GFDs (0 = satisfiable)")
	wildcard := flag.Float64("wildcard", 0.1, "wildcard label rate")
	seed := flag.Int64("seed", 1, "random seed")
	impTarget := flag.Bool("imp-target", false, "emit an implication instance (Σ + chain target)")
	out := flag.String("o", "", "output file for Σ (default stdout)")
	targetOut := flag.String("target-o", "", "output file for the implication target (default stdout)")
	flag.Parse()

	var profile *dataset.Profile
	switch strings.ToLower(*profileName) {
	case "dbpedia":
		profile = dataset.DBpedia()
	case "yago2":
		profile = dataset.YAGO2()
	case "pokec":
		profile = dataset.Pokec()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profileName)
		os.Exit(2)
	}

	g := gen.New(gen.Config{
		N: *n, K: *k, L: *l,
		Profile:      profile,
		Conflicts:    *conflicts,
		WildcardRate: *wildcard,
		Seed:         *seed,
	})

	write := func(path string, set *gfd.Set) {
		var w io.Writer = os.Stdout
		if path != "" {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			defer f.Close()
			w = f
		}
		if err := gfdio.WriteGFDs(w, set); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if *impTarget {
		set, phi := g.ImpInstance(6)
		write(*out, set)
		write(*targetOut, gfd.NewSet(phi))
		return
	}
	write(*out, g.Set())
}
