// Command benchall runs the paper's experiments (Fig. 5 and Fig. 6(a)–(l))
// and prints each as a text table. See DESIGN.md for the per-experiment
// index and EXPERIMENTS.md for paper-vs-measured results.
//
// Usage:
//
//	benchall [-scale 0.025] [-reps 3] [-seed 1] [-only fig6e]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	scale := flag.Float64("scale", 0.025, "fraction of the paper's workload sizes (1.0 = paper scale)")
	reps := flag.Int("reps", 3, "repetitions per cell (median reported)")
	seed := flag.Int64("seed", 1, "workload seed")
	only := flag.String("only", "", "run a single experiment (e.g. fig5, fig6a ... fig6l)")
	flag.Parse()

	cfg := bench.Config{Scale: *scale, Reps: *reps, Seed: *seed}
	start := time.Now()
	if *only != "" {
		run := bench.ByName(*only)
		if run == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
			os.Exit(2)
		}
		fmt.Print(run(cfg).Format())
	} else {
		for _, r := range bench.All(cfg) {
			fmt.Print(r.Format())
			fmt.Println()
		}
	}
	fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
}
