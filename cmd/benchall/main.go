// Command benchall runs the paper's experiments (Fig. 5 and Fig. 6(a)–(l))
// and prints each as a text table. See DESIGN.md for the per-experiment
// index and EXPERIMENTS.md for paper-vs-measured results.
//
// Usage:
//
//	benchall [-scale 0.025] [-reps 3] [-seed 1] [-only fig6e]
//	benchall -ci BENCH_ci.json [-baseline BENCH_baseline.json] [-tolerance 0.25]
//
// The -ci form runs the benchmark-regression metric suite instead of the
// paper experiments, writes the JSON report to the given path, and — when
// -baseline names a previous report — exits 1 if any gating metric
// regressed beyond the tolerance. CI uses it both ways: the checked-in
// BENCH_baseline.json is regenerated with `-ci BENCH_baseline.json` on a
// quiet machine, and every pipeline run emits BENCH_ci.json as an artifact
// gated against that baseline.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	scale := flag.Float64("scale", 0.025, "fraction of the paper's workload sizes (1.0 = paper scale)")
	reps := flag.Int("reps", 3, "repetitions per cell (median reported)")
	seed := flag.Int64("seed", 1, "workload seed")
	only := flag.String("only", "", "run a single experiment (e.g. fig5, fig6a ... fig6l)")
	ciOut := flag.String("ci", "", "run the CI benchmark-regression suite and write its JSON report to this path")
	baseline := flag.String("baseline", "", "with -ci: compare against this baseline report, exit 1 on regression")
	tolerance := flag.Float64("tolerance", 0.25, "with -baseline: allowed fractional regression per gating metric")
	flag.Parse()

	cfg := bench.Config{Scale: *scale, Reps: *reps, Seed: *seed}
	start := time.Now()
	if *ciOut != "" {
		runCI(cfg, *ciOut, *baseline, *tolerance, start)
		return
	}
	if *only != "" {
		run := bench.ByName(*only)
		if run == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
			os.Exit(2)
		}
		fmt.Print(run(cfg).Format())
	} else {
		for _, r := range bench.All(cfg) {
			fmt.Print(r.Format())
			fmt.Println()
		}
	}
	fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
}

// runCI measures the regression suite, writes the report, and gates it
// against the baseline when one is named.
func runCI(cfg bench.Config, out, baseline string, tolerance float64, start time.Time) {
	report, err := bench.RunCI(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ci suite: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(report.Format())
	if err := bench.WriteCIReport(out, report); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", out, err)
		os.Exit(2)
	}
	fmt.Printf("wrote %s in %s\n", out, time.Since(start).Round(time.Millisecond))
	if baseline == "" {
		return
	}
	base, err := bench.ReadCIReport(baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "read baseline %s: %v\n", baseline, err)
		os.Exit(2)
	}
	if violations := bench.CompareCI(base, report, tolerance); len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "benchmark regression against %s:\n", baseline)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Printf("no regression against %s (tolerance %.0f%%)\n", baseline, tolerance*100)
}
