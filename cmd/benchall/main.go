// Command benchall runs the paper's experiments (Fig. 5 and Fig. 6(a)–(l))
// and prints each as a text table. See DESIGN.md for the per-experiment
// index and EXPERIMENTS.md for paper-vs-measured results.
//
// Usage:
//
//	benchall [-scale 0.025] [-reps 3] [-seed 1] [-only fig6e]
//	benchall -ci BENCH_ci.json [-baseline BENCH_baseline.json] [-tolerance 0.25]
//	benchall ... [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The -ci form runs the benchmark-regression metric suite instead of the
// paper experiments, writes the JSON report to the given path, and — when
// -baseline names a previous report — exits 1 if any gating metric
// regressed beyond the tolerance (all regressed metrics are reported in one
// failure message). CI uses it both ways: the checked-in BENCH_baseline.json
// is regenerated with `-ci BENCH_baseline.json` on a quiet machine, and
// every pipeline run emits BENCH_ci.json as an artifact gated against that
// baseline. -cpuprofile/-memprofile write pprof profiles of the run (either
// form), uploaded alongside the report so per-run perf trajectories are
// inspectable with `go tool pprof`. Profiles and the BENCH_ci.json report
// are both flushed before any nonzero exit, so a gated failure still
// uploads its evidence.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	os.Exit(run())
}

// run carries the whole invocation so deferred profile flushes execute
// before the process exits with a nonzero status.
func run() int {
	scale := flag.Float64("scale", 0.025, "fraction of the paper's workload sizes (1.0 = paper scale)")
	reps := flag.Int("reps", 3, "repetitions per cell (median reported)")
	seed := flag.Int64("seed", 1, "workload seed")
	only := flag.String("only", "", "run a single experiment (e.g. fig5, fig6a ... fig6l, sharded, incremental, persist)")
	ciOut := flag.String("ci", "", "run the CI benchmark-regression suite and write its JSON report to this path")
	baseline := flag.String("baseline", "", "with -ci: compare against this baseline report, exit 1 on regression")
	tolerance := flag.Float64("tolerance", 0.25, "with -baseline: allowed fractional regression per gating metric")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken at the end of the run to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create %s: %v\n", *cpuprofile, err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "start cpu profile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)

	cfg := bench.Config{Scale: *scale, Reps: *reps, Seed: *seed}
	start := time.Now()
	if *ciOut != "" {
		return runCI(cfg, *ciOut, *baseline, *tolerance, start)
	}
	if *only != "" {
		runner := bench.ByName(*only)
		if runner == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (valid: %s)\n", *only, strings.Join(bench.Names(), ", "))
			return 2
		}
		fmt.Print(runner(cfg).Format())
	} else {
		for _, r := range bench.All(cfg) {
			fmt.Print(r.Format())
			fmt.Println()
		}
	}
	fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
	return 0
}

// writeMemProfile snapshots the heap after a final GC. A no-op for an empty
// path, so it can sit unconditionally on the exit path.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "create %s: %v\n", path, err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "write heap profile: %v\n", err)
	}
}

// runCI measures the regression suite, writes the report, and gates it
// against the baseline when one is named, returning the process exit code.
// The report is flushed before any exit-code decision — a gated regression
// (exit 1) or a half-broken suite (exit 2) still uploads whatever metrics
// were measured, so the CI artifact carries the evidence of the failure
// instead of vanishing with it.
func runCI(cfg bench.Config, out, baseline string, tolerance float64, start time.Time) int {
	report, err := bench.RunCI(cfg)
	if report != nil && len(report.Metrics) > 0 {
		fmt.Print(report.Format())
		if werr := bench.WriteCIReport(out, report); werr != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", out, werr)
			return 2
		}
		fmt.Printf("wrote %s in %s\n", out, time.Since(start).Round(time.Millisecond))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ci suite: %v\n", err)
		return 2
	}
	if baseline == "" {
		return 0
	}
	base, err := bench.ReadCIReport(baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "read baseline %s: %v\n", baseline, err)
		return 2
	}
	if err := bench.ViolationError(baseline, bench.CompareCI(base, report, tolerance)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("no regression against %s (tolerance %.0f%%)\n", baseline, tolerance*100)
	return 0
}
